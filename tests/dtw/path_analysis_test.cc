#include "dtw/path_analysis.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "ts/random.h"

namespace sdtw {
namespace dtw {
namespace {

std::vector<PathPoint> DiagonalPath(std::size_t n) {
  std::vector<PathPoint> p;
  for (std::size_t i = 0; i < n; ++i) p.emplace_back(i, i);
  return p;
}

TEST(AnalyzePathTest, EmptyPathGivesDefaults) {
  const PathStats s = AnalyzePath({}, 5, 5);
  EXPECT_EQ(s.length, 0u);
  EXPECT_DOUBLE_EQ(s.mean_diagonal_deviation, 0.0);
}

TEST(AnalyzePathTest, PureDiagonalHasZeroDeviation) {
  const PathStats s = AnalyzePath(DiagonalPath(10), 10, 10);
  EXPECT_DOUBLE_EQ(s.mean_diagonal_deviation, 0.0);
  EXPECT_DOUBLE_EQ(s.max_diagonal_deviation, 0.0);
  EXPECT_DOUBLE_EQ(s.diagonal_step_fraction, 1.0);
  EXPECT_EQ(s.longest_stall, 0u);
  EXPECT_EQ(s.length, 10u);
}

TEST(AnalyzePathTest, StallCountsConsecutiveNonDiagonalSteps) {
  // (0,0)->(0,1)->(0,2)->(1,3)->(2,3): two vertical-ish steps then diag
  // then horizontal.
  const std::vector<PathPoint> p{{0, 0}, {0, 1}, {0, 2}, {1, 3}, {2, 3}};
  const PathStats s = AnalyzePath(p, 3, 4);
  EXPECT_EQ(s.longest_stall, 2u);
  EXPECT_NEAR(s.diagonal_step_fraction, 0.25, 1e-12);
}

TEST(AnalyzePathTest, DeviationMeasuredAgainstScaledDiagonal) {
  // On a 2x3 grid the scaled diagonal for i=1 is j=2.
  const std::vector<PathPoint> p{{0, 0}, {1, 1}, {1, 2}};
  const PathStats s = AnalyzePath(p, 2, 3);
  EXPECT_DOUBLE_EQ(s.max_diagonal_deviation, 1.0);  // (1,1) is 1 off
}

TEST(ObservedCoreTest, DiagonalPathGivesDiagonalCore) {
  const auto core = ObservedCore(DiagonalPath(8), 8);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(core[i], i);
}

TEST(ObservedCoreTest, MultipleMatchesAveraged) {
  const std::vector<PathPoint> p{{0, 0}, {0, 2}, {1, 3}};
  const auto core = ObservedCore(p, 2);
  EXPECT_DOUBLE_EQ(core[0], 1.0);  // (0+2)/2
  EXPECT_DOUBLE_EQ(core[1], 3.0);
}

TEST(PathContainmentTest, FullBandContainsEverything) {
  const Band full = Band::Full(10, 10);
  EXPECT_DOUBLE_EQ(PathContainment(DiagonalPath(10), full), 1.0);
}

TEST(PathContainmentTest, PartialContainment) {
  // Band covering only column 0: contains only the first diagonal point.
  Band b = Band::FromRows(std::vector<BandRow>(4, BandRow{0, 0}), 4);
  EXPECT_DOUBLE_EQ(PathContainment(DiagonalPath(4), b), 0.25);
}

TEST(PathContainmentTest, EmptyPathIsZero) {
  EXPECT_DOUBLE_EQ(PathContainment({}, Band::Full(3, 3)), 0.0);
}

TEST(OracleBandTest, ContainsItsPath) {
  ts::Rng rng(3);
  const ts::TimeSeries x = data::patterns::RandomSmooth(60, 8, rng);
  const ts::TimeSeries y = data::patterns::RandomSmooth(70, 8, rng);
  const DtwResult r = Dtw(x, y);
  const Band oracle = OracleBand(r.path, 60, 70);
  EXPECT_TRUE(oracle.IsFeasible());
  EXPECT_DOUBLE_EQ(PathContainment(r.path, oracle), 1.0);
}

TEST(OracleBandTest, RecoversExactDistance) {
  ts::Rng rng(4);
  const ts::TimeSeries x = data::patterns::RandomSmooth(50, 6, rng);
  const ts::TimeSeries y = data::patterns::RandomSmooth(50, 6, rng);
  const DtwResult exact = Dtw(x, y);
  const Band oracle = OracleBand(exact.path, 50, 50);
  EXPECT_NEAR(DtwBanded(x, y, oracle).distance, exact.distance, 1e-9);
}

TEST(OracleBandTest, TighterThanFullGrid) {
  ts::Rng rng(5);
  const ts::TimeSeries x = data::patterns::RandomSmooth(80, 6, rng);
  const ts::TimeSeries y = data::patterns::RandomSmooth(80, 6, rng);
  const DtwResult exact = Dtw(x, y);
  const Band oracle = OracleBand(exact.path, 80, 80);
  EXPECT_LT(oracle.Coverage(), 0.5);
}

TEST(OracleBandTest, MarginWidens) {
  const Band tight = OracleBand(DiagonalPath(10), 10, 10, 0);
  const Band wide = OracleBand(DiagonalPath(10), 10, 10, 2);
  EXPECT_GT(wide.CellCount(), tight.CellCount());
}

}  // namespace
}  // namespace dtw
}  // namespace sdtw
