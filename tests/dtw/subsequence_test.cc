#include "dtw/subsequence.h"

#include <cmath>
#include <gtest/gtest.h>

#include "data/generators.h"
#include "ts/random.h"
#include "ts/transforms.h"

namespace sdtw {
namespace dtw {
namespace {

// A long series containing a known bump at [60, 100] on a flat baseline.
ts::TimeSeries SeriesWithBump(std::size_t n = 200, double center = 80.0) {
  return data::patterns::Bump(n, center, 7.0, 1.0);
}

ts::TimeSeries BumpQuery() {
  // A short bump-shaped query (the pattern to find).
  return data::patterns::Bump(40, 20.0, 7.0, 1.0);
}

TEST(SubsequenceTest, EmptyInputsGiveInfiniteMatch) {
  const SubsequenceMatch m =
      FindBestSubsequence(ts::TimeSeries(), SeriesWithBump());
  EXPECT_TRUE(std::isinf(m.distance));
  EXPECT_TRUE(
      std::isinf(FindBestSubsequence(BumpQuery(), ts::TimeSeries()).distance));
}

TEST(SubsequenceTest, FindsEmbeddedPattern) {
  const SubsequenceMatch m =
      FindBestSubsequence(BumpQuery(), SeriesWithBump());
  // The matched window must cover the bump at ~80.
  EXPECT_LE(m.begin, 80u);
  EXPECT_GE(m.end, 80u);
  EXPECT_LT(m.distance, 1.0);
}

TEST(SubsequenceTest, ExactEmbeddedCopyHasNearZeroDistance) {
  // Plant an exact copy of the query inside a flat series.
  const ts::TimeSeries query = BumpQuery();
  std::vector<double> v(300, 0.0);
  for (std::size_t i = 0; i < query.size(); ++i) v[130 + i] = query[i];
  const SubsequenceMatch m =
      FindBestSubsequence(query, ts::TimeSeries(std::move(v)));
  EXPECT_NEAR(m.distance, 0.0, 1e-9);
  EXPECT_GE(m.begin, 120u);
  EXPECT_LE(m.end, 180u);
}

TEST(SubsequenceTest, WindowBoundsOrdered) {
  const SubsequenceMatch m =
      FindBestSubsequence(BumpQuery(), SeriesWithBump());
  EXPECT_LE(m.begin, m.end);
  EXPECT_LT(m.end, SeriesWithBump().size());
}

TEST(SubsequenceTest, PathSpansQueryAndWindow) {
  const ts::TimeSeries query = BumpQuery();
  const ts::TimeSeries series = SeriesWithBump();
  const SubsequenceMatch m = FindBestSubsequence(query, series);
  ASSERT_FALSE(m.path.empty());
  EXPECT_EQ(m.path.front().first, 0u);
  EXPECT_EQ(m.path.front().second, m.begin);
  EXPECT_EQ(m.path.back().first, query.size() - 1);
  EXPECT_EQ(m.path.back().second, m.end);
  // Monotone steps.
  for (std::size_t k = 1; k < m.path.size(); ++k) {
    EXPECT_GE(m.path[k].first, m.path[k - 1].first);
    EXPECT_GE(m.path[k].second, m.path[k - 1].second);
  }
}

TEST(SubsequenceTest, WantPathFalseSkipsPath) {
  SubsequenceOptions opt;
  opt.want_path = false;
  const SubsequenceMatch m =
      FindBestSubsequence(BumpQuery(), SeriesWithBump(), opt);
  EXPECT_TRUE(m.path.empty());
  EXPECT_TRUE(std::isfinite(m.distance));
}

TEST(SubsequenceTest, SubsequenceNeverWorseThanGlobalDtw) {
  // Open begin/end can only relax the alignment problem.
  ts::Rng rng(3);
  const ts::TimeSeries q = data::patterns::RandomSmooth(30, 4, rng);
  const ts::TimeSeries s = data::patterns::RandomSmooth(100, 8, rng);
  const double global = Dtw(q, s).distance;
  const double sub = FindBestSubsequence(q, s).distance;
  EXPECT_LE(sub, global + 1e-9);
}

TEST(SubsequenceTest, ShiftedPatternStillFound) {
  for (double center : {30.0, 100.0, 170.0}) {
    const SubsequenceMatch m =
        FindBestSubsequence(BumpQuery(), SeriesWithBump(200, center));
    EXPECT_LE(m.begin, static_cast<std::size_t>(center));
    EXPECT_GE(m.end, static_cast<std::size_t>(center)) << center;
  }
}

TEST(TopKSubsequenceTest, FindsMultipleOccurrences) {
  // Two bumps at 50 and 150.
  std::vector<double> v(200, 0.0);
  const ts::TimeSeries b1 = data::patterns::Bump(200, 50.0, 7.0, 1.0);
  const ts::TimeSeries b2 = data::patterns::Bump(200, 150.0, 7.0, 1.0);
  for (std::size_t i = 0; i < 200; ++i) v[i] = b1[i] + b2[i];
  const auto matches =
      FindTopKSubsequences(BumpQuery(), ts::TimeSeries(std::move(v)), 2);
  ASSERT_EQ(matches.size(), 2u);
  // One match per bump, non-overlapping.
  const bool covers50 = (matches[0].begin <= 50 && matches[0].end >= 50) ||
                        (matches[1].begin <= 50 && matches[1].end >= 50);
  const bool covers150 = (matches[0].begin <= 150 && matches[0].end >= 150) ||
                         (matches[1].begin <= 150 && matches[1].end >= 150);
  EXPECT_TRUE(covers50);
  EXPECT_TRUE(covers150);
  EXPECT_TRUE(matches[0].end < matches[1].begin ||
              matches[1].end < matches[0].begin);
}

TEST(TopKSubsequenceTest, MatchesSortedByQualityGreedily) {
  std::vector<double> v(200, 0.0);
  const ts::TimeSeries strong = data::patterns::Bump(200, 50.0, 7.0, 1.0);
  const ts::TimeSeries weak = data::patterns::Bump(200, 150.0, 7.0, 0.6);
  for (std::size_t i = 0; i < 200; ++i) v[i] = strong[i] + weak[i];
  const auto matches =
      FindTopKSubsequences(BumpQuery(), ts::TimeSeries(std::move(v)), 2);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_LE(matches[0].distance, matches[1].distance);
  // The strong bump should win round one.
  EXPECT_LE(matches[0].begin, 50u);
  EXPECT_GE(matches[0].end, 50u);
}

TEST(TopKSubsequenceTest, KZeroGivesNothing) {
  EXPECT_TRUE(
      FindTopKSubsequences(BumpQuery(), SeriesWithBump(), 0).empty());
}

TEST(TopKSubsequenceTest, ExhaustsSeriesGracefully) {
  // Ask for far more matches than samples available: every returned match
  // must be finite and the windows pairwise disjoint (the series has only
  // 80 samples, so at most 80 windows exist).
  const auto matches =
      FindTopKSubsequences(BumpQuery(), SeriesWithBump(80), 200);
  EXPECT_GE(matches.size(), 1u);
  EXPECT_LE(matches.size(), 80u);
  for (std::size_t a = 0; a < matches.size(); ++a) {
    EXPECT_TRUE(std::isfinite(matches[a].distance));
    for (std::size_t b = a + 1; b < matches.size(); ++b) {
      EXPECT_TRUE(matches[a].end < matches[b].begin ||
                  matches[b].end < matches[a].begin);
    }
  }
}

}  // namespace
}  // namespace dtw
}  // namespace sdtw
