#include "dtw/band_matrix.h"

#include <cmath>
#include <gtest/gtest.h>

namespace sdtw {
namespace dtw {
namespace {

TEST(BandMatrixTest, ClosedBeginStoresOriginOnly) {
  const Band band = Band::Full(3, 4);
  const BandMatrix d(band);
  EXPECT_EQ(d.n(), 3u);
  EXPECT_EQ(d.m(), 4u);
  EXPECT_EQ(d.row_lo(0), 0u);
  EXPECT_EQ(d.row_hi(0), 0u);
  EXPECT_DOUBLE_EQ(d.at(0, 0), 0.0);
  EXPECT_TRUE(std::isinf(d.at(0, 1)));  // border beyond the origin
  // DP rows 1..n cover columns [1, m].
  for (std::size_t i = 1; i <= 3; ++i) {
    EXPECT_EQ(d.row_lo(i), 1u);
    EXPECT_EQ(d.row_hi(i), 4u);
    EXPECT_TRUE(std::isinf(d.at(i, 0)));  // column-0 border never stored
    EXPECT_TRUE(std::isinf(d.at(i, 1)));  // in-band cells start at +inf
  }
  // 1 origin cell + 3 rows of 4.
  EXPECT_EQ(d.cells_allocated(), 13u);
}

TEST(BandMatrixTest, OpenBeginStoresZeroBorderRow) {
  const BandMatrix d = BandMatrix::OpenBegin(Band::Full(2, 5));
  EXPECT_EQ(d.row_lo(0), 0u);
  EXPECT_EQ(d.row_hi(0), 5u);
  for (std::size_t j = 0; j <= 5; ++j) {
    EXPECT_DOUBLE_EQ(d.at(0, j), 0.0) << j;
  }
  EXPECT_TRUE(std::isinf(d.at(1, 0)));
  EXPECT_EQ(d.cells_allocated(), 6u + 2u * 5u);
}

TEST(BandMatrixTest, NarrowBandWindowsFollowTheBand) {
  std::vector<BandRow> rows = {{0, 1}, {1, 2}, {2, 3}};
  const Band band = Band::FromRows(std::move(rows), 4);
  BandMatrix d(band);
  EXPECT_EQ(d.row_lo(2), 2u);  // band row 1 = [1,2] shifted by the border
  EXPECT_EQ(d.row_hi(2), 3u);
  EXPECT_TRUE(std::isinf(d.at(2, 1)));  // left of the window
  EXPECT_TRUE(std::isinf(d.at(2, 4)));  // right of the window
  d.row_data(2)[0] = 7.5;  // DP cell (2, 2)
  EXPECT_DOUBLE_EQ(d.at(2, 2), 7.5);
  // 1 origin + widths 2 + 2 + 2.
  EXPECT_EQ(d.cells_allocated(), 7u);
}

TEST(BandMatrixTest, InvertedRowsStoreNothing) {
  std::vector<BandRow> rows = {{0, 3}, {3, 1}, {0, 3}};
  const Band band = Band::FromRows(std::move(rows), 4);
  const BandMatrix d(band);
  EXPECT_GT(d.row_lo(2), d.row_hi(2));
  for (std::size_t j = 0; j <= 4; ++j) {
    EXPECT_TRUE(std::isinf(d.at(2, j))) << j;
  }
  EXPECT_EQ(d.cells_allocated(), 1u + 4u + 0u + 4u);
}

}  // namespace
}  // namespace dtw
}  // namespace sdtw
