#include "dtw/lower_bounds.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "dtw/dtw.h"
#include "ts/random.h"

namespace sdtw {
namespace dtw {
namespace {

ts::TimeSeries RandomSeries(std::size_t n, std::uint64_t seed) {
  ts::Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.Gaussian();
  return ts::TimeSeries(std::move(v));
}

TEST(EnvelopeTest, ZeroRadiusIsIdentity) {
  const ts::TimeSeries s({1.0, 3.0, 2.0});
  const Envelope e = MakeEnvelope(s, 0);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_DOUBLE_EQ(e.upper[i], s[i]);
    EXPECT_DOUBLE_EQ(e.lower[i], s[i]);
  }
}

TEST(EnvelopeTest, BoundsContainSeries) {
  const ts::TimeSeries s = RandomSeries(100, 3);
  const Envelope e = MakeEnvelope(s, 5);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_LE(e.lower[i], s[i]);
    EXPECT_GE(e.upper[i], s[i]);
  }
}

TEST(EnvelopeTest, MatchesBruteForce) {
  const ts::TimeSeries s = RandomSeries(60, 7);
  const std::size_t r = 4;
  const Envelope e = MakeEnvelope(s, r);
  for (std::size_t i = 0; i < s.size(); ++i) {
    double mx = s[i], mn = s[i];
    const std::size_t lo = i >= r ? i - r : 0;
    const std::size_t hi = std::min(s.size() - 1, i + r);
    for (std::size_t j = lo; j <= hi; ++j) {
      mx = std::max(mx, s[j]);
      mn = std::min(mn, s[j]);
    }
    EXPECT_DOUBLE_EQ(e.upper[i], mx) << i;
    EXPECT_DOUBLE_EQ(e.lower[i], mn) << i;
  }
}

TEST(EnvelopeTest, LargeRadiusGivesGlobalExtrema) {
  const ts::TimeSeries s({1.0, 5.0, -2.0, 3.0});
  const Envelope e = MakeEnvelope(s, 100);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_DOUBLE_EQ(e.upper[i], 5.0);
    EXPECT_DOUBLE_EQ(e.lower[i], -2.0);
  }
}

// Brute-force reference envelope: per-element window scan, no deques and
// no direct fill — the oracle both MakeEnvelope code paths must match.
Envelope BruteForceEnvelope(const ts::TimeSeries& s, std::size_t r) {
  Envelope env;
  env.upper.assign(s.size(), 0.0);
  env.lower.assign(s.size(), 0.0);
  for (std::size_t i = 0; i < s.size(); ++i) {
    double mx = s[i], mn = s[i];
    const std::size_t lo = i >= r ? i - r : 0;
    const std::size_t hi = std::min(s.size() - 1, i + r);
    for (std::size_t j = lo; j <= hi; ++j) {
      mx = std::max(mx, s[j]);
      mn = std::min(mn, s[j]);
    }
    env.upper[i] = mx;
    env.lower[i] = mn;
  }
  return env;
}

TEST(EnvelopeTest, FullSpanDirectFillMatchesSlidingWindow) {
  // r >= n-1 takes the constant-fill fast path; it must be
  // indistinguishable from the windowed computation, both element-wise
  // and through LB_Keogh.
  const std::size_t n = 60;
  const ts::TimeSeries s = RandomSeries(n, 11);
  const ts::TimeSeries x = RandomSeries(n, 12);
  for (const std::size_t r : {n - 1, n, 2 * n, std::size_t{100000}}) {
    const Envelope fast = MakeEnvelope(s, r);
    const Envelope reference = BruteForceEnvelope(s, r);
    ASSERT_EQ(fast.upper.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_DOUBLE_EQ(fast.upper[i], reference.upper[i]) << r << " " << i;
      EXPECT_DOUBLE_EQ(fast.lower[i], reference.lower[i]) << r << " " << i;
    }
    EXPECT_DOUBLE_EQ(LbKeogh(x, fast), LbKeogh(x, reference)) << r;
  }
  // The widest radius still on the deque path agrees with the oracle too,
  // pinning the boundary between the two implementations.
  const Envelope boundary = MakeEnvelope(s, n - 2);
  const Envelope boundary_ref = BruteForceEnvelope(s, n - 2);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(boundary.upper[i], boundary_ref.upper[i]) << i;
    EXPECT_DOUBLE_EQ(boundary.lower[i], boundary_ref.lower[i]) << i;
  }
}

TEST(EnvelopeTest, FullSpanSingleElementAndEmpty) {
  const Envelope empty = MakeEnvelope(ts::TimeSeries{}, 5);
  EXPECT_TRUE(empty.upper.empty());
  EXPECT_TRUE(empty.lower.empty());
  // n == 1: r >= n-1 == 0 always, so even r = 0 is full-span.
  const Envelope one = MakeEnvelope(ts::TimeSeries({2.5}), 0);
  ASSERT_EQ(one.upper.size(), 1u);
  EXPECT_DOUBLE_EQ(one.upper[0], 2.5);
  EXPECT_DOUBLE_EQ(one.lower[0], 2.5);
}

TEST(LbKimTest, IsLowerBoundOnRandomPairs) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const ts::TimeSeries x = RandomSeries(40, seed * 2 + 1);
    const ts::TimeSeries y = RandomSeries(35, seed * 2 + 2);
    const double lb = LbKim(x, y);
    const double d = DtwDistance(x, y);
    EXPECT_LE(lb, d + 1e-9) << "seed=" << seed;
  }
}

TEST(LbKimTest, ZeroForIdenticalSeries) {
  const ts::TimeSeries x = RandomSeries(30, 5);
  EXPECT_DOUBLE_EQ(LbKim(x, x), 0.0);
}

TEST(LbKimTest, PositiveForSeparatedSeries) {
  const ts::TimeSeries x = ts::TimeSeries::Constant(10, 0.0);
  const ts::TimeSeries y = ts::TimeSeries::Constant(10, 4.0);
  EXPECT_GT(LbKim(x, y), 3.9);
}

TEST(LbKeoghTest, IsLowerBoundUnderMatchingWindow) {
  // LB_Keogh(r) lower-bounds DTW constrained to the Sakoe-Chiba band of
  // radius r, hence also full DTW only when the optimal path is inside.
  // Test against banded DTW for strictness.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const ts::TimeSeries x = RandomSeries(50, 100 + seed);
    const ts::TimeSeries y = RandomSeries(50, 200 + seed);
    const std::size_t r = 5;
    const double lb = LbKeogh(x, y, r);
    const Band band = SakoeChibaBand(50, 50, 2.0 * 5.0 / 50.0);
    const double d = DtwBandedDistance(x, y, band);
    EXPECT_LE(lb, d + 1e-9) << "seed=" << seed;
  }
}

TEST(LbKeoghTest, FullWindowAlsoBoundsFullDtw) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const ts::TimeSeries x = RandomSeries(40, 300 + seed);
    const ts::TimeSeries y = RandomSeries(40, 400 + seed);
    const double lb = LbKeogh(x, y, 40);
    EXPECT_LE(lb, DtwDistance(x, y) + 1e-9) << "seed=" << seed;
  }
}

TEST(LbKeoghTest, ZeroWhenInsideEnvelope) {
  const ts::TimeSeries y({0.0, 1.0, 2.0, 1.0, 0.0});
  const ts::TimeSeries x({0.5, 1.0, 1.5, 1.0, 0.5});
  EXPECT_DOUBLE_EQ(LbKeogh(x, y, 2), 0.0);
}

TEST(LbKeoghTest, LengthMismatchReturnsZero) {
  const ts::TimeSeries x({1.0, 2.0});
  const ts::TimeSeries y({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(LbKeogh(x, y, 1), 0.0);
}

TEST(LbKeoghTest, TightensWithSmallerRadius) {
  const ts::TimeSeries x = RandomSeries(60, 9);
  const ts::TimeSeries y = RandomSeries(60, 10);
  EXPECT_GE(LbKeogh(x, y, 1), LbKeogh(x, y, 10) - 1e-12);
}

TEST(LbKeoghAbandoningTest, DecisionMatchesFullPassExactly) {
  // The cumulative-abandoning pass accumulates the same non-negative
  // terms in the same order, so (result > threshold) must agree with the
  // full pass for every threshold, and the result must equal the full
  // bound bit for bit whenever the pass completes.
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const ts::TimeSeries x = RandomSeries(64, 700 + seed);
    const ts::TimeSeries y = RandomSeries(64, 800 + seed);
    const Envelope env = MakeEnvelope(y, 3);
    const double full = LbKeogh(x, env);
    const double thresholds[] = {std::numeric_limits<double>::infinity(),
                                 full,
                                 full * 0.999,
                                 full * 0.5,
                                 full * 1.001,
                                 0.0};
    for (const double threshold : thresholds) {
      bool abandoned = true;
      const double got = LbKeoghAbandoning(x, env, threshold, &abandoned);
      EXPECT_EQ(got > threshold, full > threshold)
          << "seed " << seed << " thr " << threshold;
      EXPECT_LE(got, full) << "seed " << seed;  // a partial prefix sum
      if (!abandoned) {
        EXPECT_EQ(got, full) << "seed " << seed << " thr " << threshold;
      } else {
        EXPECT_GT(got, threshold) << "seed " << seed << " thr " << threshold;
      }
    }
    // No threshold: always completes, always the exact bound.
    bool abandoned = true;
    EXPECT_EQ(LbKeoghAbandoning(
                  x, env, std::numeric_limits<double>::infinity(), &abandoned),
              full);
    EXPECT_FALSE(abandoned);
  }
}

TEST(LbKeoghAbandoningTest, AbandonsEarlyWhenBoundExplodes) {
  // A query far outside the envelope crosses any small threshold within a
  // few terms; the pass must report the early stop.
  const ts::TimeSeries y({0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0});
  const ts::TimeSeries x({10.0, 10.0, 10.0, 10.0, 10.0, 10.0, 10.0, 10.0});
  const Envelope env = MakeEnvelope(y, 2);
  bool abandoned = false;
  const double got = LbKeoghAbandoning(x, env, 5.0, &abandoned);
  EXPECT_TRUE(abandoned);
  EXPECT_GT(got, 5.0);
  EXPECT_LT(got, LbKeogh(x, env));  // stopped before the full sum
}

TEST(LbKeoghAbandoningTest, LengthMismatchIsTrivialBound) {
  const ts::TimeSeries x({1.0, 2.0});
  const ts::TimeSeries y({1.0, 2.0, 3.0});
  bool abandoned = true;
  EXPECT_DOUBLE_EQ(LbKeoghAbandoning(x, MakeEnvelope(y, 1), 0.5, &abandoned),
                   0.0);
  EXPECT_FALSE(abandoned);
}

TEST(SeriesStatsTest, CachedLbKimMatchesDirect) {
  const ts::TimeSeries x = RandomSeries(80, 21);
  const ts::TimeSeries y = RandomSeries(64, 22);
  const SeriesStats sx = MakeSeriesStats(x);
  const SeriesStats sy = MakeSeriesStats(y);
  EXPECT_TRUE(sx.valid);
  EXPECT_DOUBLE_EQ(LbKim(sx, sy), LbKim(x, y));
}

TEST(SeriesStatsTest, SummaryFieldsAreCorrect) {
  const ts::TimeSeries s({3.0, -1.0, 7.0, 2.0});
  const SeriesStats st = MakeSeriesStats(s);
  EXPECT_DOUBLE_EQ(st.first, 3.0);
  EXPECT_DOUBLE_EQ(st.last, 2.0);
  EXPECT_DOUBLE_EQ(st.min, -1.0);
  EXPECT_DOUBLE_EQ(st.max, 7.0);
  EXPECT_TRUE(st.valid);
}

TEST(SeriesStatsTest, EmptySeriesIsInvalidAndBoundsZero) {
  const SeriesStats empty = MakeSeriesStats(ts::TimeSeries{});
  EXPECT_FALSE(empty.valid);
  const SeriesStats other = MakeSeriesStats(ts::TimeSeries({1.0}));
  EXPECT_DOUBLE_EQ(LbKim(empty, other), 0.0);
}

TEST(BandMaxRadiusTest, SakoeChibaRadiusRecovered) {
  const Band b = SakoeChibaBand(100, 100, 0.2);
  const std::size_t r = BandMaxRadius(b);
  // Half-width is ceil(0.2*100/2) = 10.
  EXPECT_GE(r, 10u);
  EXPECT_LE(r, 12u);
}

TEST(BandMaxRadiusTest, FullBandRadiusIsGridWidth) {
  const Band b = Band::Full(10, 30);
  EXPECT_GE(BandMaxRadius(b), 29u);
}

}  // namespace
}  // namespace dtw
}  // namespace sdtw
