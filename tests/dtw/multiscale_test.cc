#include "dtw/multiscale.h"

#include <cmath>
#include <gtest/gtest.h>

#include "data/generators.h"
#include "ts/random.h"

namespace sdtw {
namespace dtw {
namespace {

ts::TimeSeries Smooth(std::size_t n, std::uint64_t seed) {
  ts::Rng rng(seed);
  return data::patterns::RandomSmooth(n, 6, rng);
}

TEST(ProjectPathTest, DiagonalPathProjectsAroundDiagonal) {
  std::vector<PathPoint> coarse;
  for (std::size_t i = 0; i < 4; ++i) coarse.emplace_back(i, i);
  const Band band = ProjectPathToBand(coarse, 8, 8, 2, 0);
  EXPECT_TRUE(band.IsFeasible());
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(band.Contains(i, i)) << i;
  }
}

TEST(ProjectPathTest, RadiusWidensBand) {
  std::vector<PathPoint> coarse;
  for (std::size_t i = 0; i < 4; ++i) coarse.emplace_back(i, i);
  const Band narrow = ProjectPathToBand(coarse, 8, 8, 2, 0);
  const Band wide = ProjectPathToBand(coarse, 8, 8, 2, 2);
  EXPECT_GT(wide.CellCount(), narrow.CellCount());
}

TEST(ProjectPathTest, UncoveredTrailingRowsInherit) {
  std::vector<PathPoint> coarse{{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  // 9 rows with shrink 2: row 8 is not covered by any projected block.
  const Band band = ProjectPathToBand(coarse, 9, 9, 2, 0);
  EXPECT_TRUE(band.IsFeasible());
}

TEST(MultiscaleTest, SmallInputsSolvedExactly) {
  const ts::TimeSeries x = Smooth(20, 1);
  const ts::TimeSeries y = Smooth(20, 2);
  MultiscaleOptions opt;
  opt.min_size = 32;
  const DtwResult exact = Dtw(x, y);
  const DtwResult ms = MultiscaleDtw(x, y, opt);
  EXPECT_NEAR(ms.distance, exact.distance, 1e-12);
}

TEST(MultiscaleTest, ApproximationIsUpperBound) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const ts::TimeSeries x = Smooth(200, 10 + seed);
    const ts::TimeSeries y = Smooth(200, 20 + seed);
    const double exact = Dtw(x, y).distance;
    const double approx = MultiscaleDtw(x, y).distance;
    EXPECT_GE(approx, exact - 1e-9) << seed;
  }
}

TEST(MultiscaleTest, CloseToExactOnSmoothData) {
  const ts::TimeSeries x = Smooth(256, 42);
  const ts::TimeSeries y = Smooth(256, 43);
  const double exact = Dtw(x, y).distance;
  MultiscaleOptions opt;
  opt.radius = 4;
  const double approx = MultiscaleDtw(x, y, opt).distance;
  ASSERT_GT(exact, 0.0);
  EXPECT_LT((approx - exact) / exact, 0.25);
}

TEST(MultiscaleTest, FillsFewerCellsThanFullGrid) {
  const ts::TimeSeries x = Smooth(512, 5);
  const ts::TimeSeries y = Smooth(512, 6);
  const DtwResult r = MultiscaleDtw(x, y);
  EXPECT_LT(r.cells_filled, 512u * 512u / 2u);
}

TEST(MultiscaleTest, PathIsValid) {
  const ts::TimeSeries x = Smooth(128, 7);
  const ts::TimeSeries y = Smooth(150, 8);
  const DtwResult r = MultiscaleDtw(x, y);
  EXPECT_TRUE(IsValidWarpPath(r.path, 128, 150));
}

TEST(MultiscaleConstrainedTest, RespectsConstraintBand) {
  const ts::TimeSeries x = Smooth(128, 9);
  const ts::TimeSeries y = Smooth(128, 10);
  const Band constraint = SakoeChibaBand(128, 128, 0.3);
  MultiscaleOptions opt;
  opt.want_path = true;
  const DtwResult r = MultiscaleDtwConstrained(x, y, constraint, opt);
  ASSERT_FALSE(r.path.empty());
  // Path must lie inside the (feasibility-repaired) constraint ∩ projection;
  // in particular inside a slightly widened constraint.
  Band widened = constraint;
  widened.Widen(2);
  for (const PathPoint& p : r.path) {
    EXPECT_TRUE(widened.Contains(p.first, p.second));
  }
}

TEST(MultiscaleConstrainedTest, UpperBoundsBandedDtw) {
  const ts::TimeSeries x = Smooth(100, 11);
  const ts::TimeSeries y = Smooth(100, 12);
  const Band constraint = SakoeChibaBand(100, 100, 0.4);
  const double banded = DtwBanded(x, y, constraint).distance;
  const double combined =
      MultiscaleDtwConstrained(x, y, constraint).distance;
  EXPECT_GE(combined, banded - 1e-9);
}

}  // namespace
}  // namespace dtw
}  // namespace sdtw
