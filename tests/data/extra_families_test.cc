#include "data/extra_families.h"

#include <gtest/gtest.h>

#include "ts/stats.h"

namespace sdtw {
namespace data {
namespace {

TEST(CbfTest, DefaultCardinalities) {
  const ts::Dataset ds = MakeCbf();
  EXPECT_EQ(ds.size(), 90u);
  EXPECT_EQ(ds.NumClasses(), 3u);
  for (const auto& s : ds) EXPECT_EQ(s.size(), 128u);
}

TEST(CbfTest, Deterministic) {
  GeneratorOptions a, b;
  a.seed = b.seed = 9;
  a.num_series = b.num_series = 6;
  const ts::Dataset d1 = MakeCbf(a);
  const ts::Dataset d2 = MakeCbf(b);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(d1[i], d2[i]);
}

TEST(CbfTest, ClassesStructurallyDifferent) {
  GeneratorOptions opt;
  opt.num_series = 30;
  opt.z_normalize = false;
  opt.deform.noise_sigma = 0.0;
  const ts::Dataset ds = MakeCbf(opt);
  // Bell rises within its active region, funnel falls: compare the mean of
  // the first vs second half of the active region via correlation with a
  // ramp.
  std::vector<double> ramp(128);
  for (std::size_t i = 0; i < 128; ++i) ramp[i] = static_cast<double>(i);
  double bell_corr = 0.0, funnel_corr = 0.0;
  int bells = 0, funnels = 0;
  for (const auto& s : ds) {
    const double c = ts::Correlation(s.span(), ramp);
    if (s.label() == 1) {
      bell_corr += c;
      ++bells;
    } else if (s.label() == 2) {
      funnel_corr += c;
      ++funnels;
    }
  }
  ASSERT_GT(bells, 0);
  ASSERT_GT(funnels, 0);
  EXPECT_GT(bell_corr / bells, funnel_corr / funnels);
}

TEST(TwoPatternsTest, DefaultCardinalities) {
  const ts::Dataset ds = MakeTwoPatterns();
  EXPECT_EQ(ds.size(), 100u);
  EXPECT_EQ(ds.NumClasses(), 4u);
}

TEST(TwoPatternsTest, CustomSizes) {
  GeneratorOptions opt;
  opt.length = 64;
  opt.num_series = 8;
  const ts::Dataset ds = MakeTwoPatterns(opt);
  EXPECT_EQ(ds.size(), 8u);
  EXPECT_EQ(ds[0].size(), 64u);
}

TEST(TwoPatternsTest, TransientSignsFollowClass) {
  GeneratorOptions opt;
  opt.num_series = 16;
  opt.z_normalize = false;
  opt.deform.noise_sigma = 0.0;
  const ts::Dataset ds = MakeTwoPatterns(opt);
  for (const auto& s : ds) {
    // First transient lives in the first half, second in the second half.
    double first_extreme = 0.0, second_extreme = 0.0;
    for (std::size_t i = 0; i < s.size() / 2; ++i) {
      if (std::abs(s[i]) > std::abs(first_extreme)) first_extreme = s[i];
    }
    for (std::size_t i = s.size() / 2; i < s.size(); ++i) {
      if (std::abs(s[i]) > std::abs(second_extreme)) second_extreme = s[i];
    }
    const bool first_up = (s.label() & 1) != 0;
    const bool second_up = (s.label() & 2) != 0;
    EXPECT_EQ(first_extreme > 0.0, first_up) << s.name();
    EXPECT_EQ(second_extreme > 0.0, second_up) << s.name();
  }
}

TEST(TwoPatternsTest, BalancedClasses) {
  const ts::Dataset ds = MakeTwoPatterns();
  for (int label : ds.Labels()) {
    EXPECT_EQ(ds.IndicesOfClass(label).size(), 25u);
  }
}

}  // namespace
}  // namespace data
}  // namespace sdtw
