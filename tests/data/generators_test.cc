#include "data/generators.h"

#include <cmath>
#include <gtest/gtest.h>

#include "ts/stats.h"

namespace sdtw {
namespace data {
namespace {

TEST(PatternsTest, StepRisesMonotonically) {
  const ts::TimeSeries s = patterns::Step(100, 50.0, 5.0);
  EXPECT_LT(s[0], 0.05);
  EXPECT_GT(s[99], 0.95);
  for (std::size_t i = 1; i < s.size(); ++i) EXPECT_GE(s[i], s[i - 1]);
}

TEST(PatternsTest, RampFlatOutsideRange) {
  const ts::TimeSeries s = patterns::Ramp(100, 30.0, 60.0);
  EXPECT_DOUBLE_EQ(s[0], 0.0);
  EXPECT_DOUBLE_EQ(s[29], 0.0);
  EXPECT_DOUBLE_EQ(s[99], 1.0);
  EXPECT_NEAR(s[45], 0.5, 0.05);
}

TEST(PatternsTest, BumpPeaksAtCentre) {
  const ts::TimeSeries s = patterns::Bump(100, 40.0, 5.0, 2.0);
  EXPECT_NEAR(s[40], 2.0, 1e-9);
  EXPECT_LT(s[0], 0.01);
  EXPECT_LT(s[99], 0.01);
}

TEST(PatternsTest, NegativeBumpIsDip) {
  const ts::TimeSeries s = patterns::Bump(100, 40.0, 5.0, -1.0);
  EXPECT_NEAR(s[40], -1.0, 1e-9);
}

TEST(PatternsTest, BurstZeroBeforeOnset) {
  const ts::TimeSeries s = patterns::Burst(100, 50.0, 10.0, 20.0);
  for (std::size_t i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(s[i], 0.0);
  double energy = 0.0;
  for (std::size_t i = 50; i < 100; ++i) energy += std::abs(s[i]);
  EXPECT_GT(energy, 0.1);
}

TEST(PatternsTest, BurstDecays) {
  const ts::TimeSeries s = patterns::Burst(200, 10.0, 8.0, 15.0, 1.0);
  double early = 0.0, late = 0.0;
  for (std::size_t i = 10; i < 40; ++i) early += std::abs(s[i]);
  for (std::size_t i = 150; i < 180; ++i) late += std::abs(s[i]);
  EXPECT_GT(early, late);
}

TEST(PatternsTest, RandomSmoothDeterministicPerSeed) {
  ts::Rng r1(5), r2(5);
  const ts::TimeSeries a = patterns::RandomSmooth(100, 6, r1);
  const ts::TimeSeries b = patterns::RandomSmooth(100, 6, r2);
  EXPECT_EQ(a, b);
}

TEST(DeformTest, PreservesLengthAndLabel) {
  ts::TimeSeries proto = patterns::Bump(120, 60.0, 8.0);
  proto.set_label(3);
  ts::Rng rng(7);
  const ts::TimeSeries d = Deform(proto, {}, rng);
  EXPECT_EQ(d.size(), 120u);
  EXPECT_EQ(d.label(), 3);
}

TEST(DeformTest, NoiseFreeDeformKeepsShape) {
  DeformationOptions opt;
  opt.noise_sigma = 0.0;
  opt.amplitude_jitter = 0.0;
  opt.warp_strength = 0.1;
  opt.shift_fraction = 0.0;
  const ts::TimeSeries proto = patterns::Bump(200, 100.0, 10.0);
  ts::Rng rng(11);
  const ts::TimeSeries d = Deform(proto, opt, rng);
  // Peak is preserved (possibly moved slightly).
  double mx = 0.0;
  for (double v : d) mx = std::max(mx, v);
  EXPECT_NEAR(mx, 1.0, 0.05);
}

TEST(DeformTest, DifferentSeedsDiffer) {
  const ts::TimeSeries proto = patterns::Bump(100, 50.0, 10.0);
  ts::Rng r1(1), r2(2);
  EXPECT_FALSE(Deform(proto, {}, r1) == Deform(proto, {}, r2));
}

TEST(GunLikeTest, Table1Cardinalities) {
  const ts::Dataset ds = MakeGunLike();
  EXPECT_EQ(ds.size(), 50u);
  EXPECT_EQ(ds.NumClasses(), 2u);
  for (const auto& s : ds) EXPECT_EQ(s.size(), 150u);
}

TEST(TraceLikeTest, Table1Cardinalities) {
  const ts::Dataset ds = MakeTraceLike();
  EXPECT_EQ(ds.size(), 100u);
  EXPECT_EQ(ds.NumClasses(), 4u);
  for (const auto& s : ds) EXPECT_EQ(s.size(), 275u);
}

TEST(WordsLikeTest, Table1Cardinalities) {
  const ts::Dataset ds = MakeWordsLike();
  EXPECT_EQ(ds.size(), 450u);
  EXPECT_EQ(ds.NumClasses(), 50u);
  for (const auto& s : ds) EXPECT_EQ(s.size(), 270u);
}

TEST(GeneratorsTest, ZNormalisedByDefault) {
  const ts::Dataset ds = MakeGunLike();
  for (std::size_t i = 0; i < 5; ++i) {
    const ts::Summary s = ts::Summarize(ds[i]);
    EXPECT_NEAR(s.mean, 0.0, 1e-9);
    EXPECT_NEAR(s.stddev, 1.0, 1e-9);
  }
}

TEST(GeneratorsTest, ZNormalisationCanBeDisabled) {
  GeneratorOptions opt;
  opt.z_normalize = false;
  opt.num_series = 4;
  const ts::Dataset ds = MakeGunLike(opt);
  bool any_nonunit = false;
  for (const auto& s : ds) {
    if (std::abs(ts::Summarize(s).stddev - 1.0) > 0.01) any_nonunit = true;
  }
  EXPECT_TRUE(any_nonunit);
}

TEST(GeneratorsTest, DeterministicPerSeed) {
  GeneratorOptions a, b;
  a.seed = 42;
  b.seed = 42;
  a.num_series = 6;
  b.num_series = 6;
  const ts::Dataset d1 = MakeGunLike(a);
  const ts::Dataset d2 = MakeGunLike(b);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(d1[i], d2[i]);
}

TEST(GeneratorsTest, DifferentSeedsProduceDifferentSets) {
  GeneratorOptions a, b;
  a.seed = 1;
  b.seed = 2;
  a.num_series = 4;
  b.num_series = 4;
  EXPECT_FALSE(MakeTraceLike(a)[0] == MakeTraceLike(b)[0]);
}

TEST(GeneratorsTest, CustomSizesHonoured) {
  GeneratorOptions opt;
  opt.length = 64;
  opt.num_series = 10;
  const ts::Dataset ds = MakeWordsLike(opt);
  EXPECT_EQ(ds.size(), 10u);
  EXPECT_EQ(ds[0].size(), 64u);
}

TEST(GeneratorsTest, ClassesBalanced) {
  const ts::Dataset ds = MakeTraceLike();
  for (int label : ds.Labels()) {
    EXPECT_EQ(ds.IndicesOfClass(label).size(), 25u);
  }
}

TEST(GeneratorsTest, SameClassCloserThanCrossClassOnAverage) {
  // Sanity: Euclidean within class < across classes on GunLike.
  GeneratorOptions opt;
  opt.num_series = 20;
  const ts::Dataset ds = MakeGunLike(opt);
  double intra = 0.0, inter = 0.0;
  std::size_t ni = 0, nx = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    for (std::size_t j = i + 1; j < ds.size(); ++j) {
      const double d = ts::EuclideanDistance(ds[i].span(), ds[j].span());
      if (ds[i].label() == ds[j].label()) {
        intra += d;
        ++ni;
      } else {
        inter += d;
        ++nx;
      }
    }
  }
  ASSERT_GT(ni, 0u);
  ASSERT_GT(nx, 0u);
  EXPECT_LT(intra / static_cast<double>(ni), inter / static_cast<double>(nx));
}

TEST(MakeByNameTest, ResolvesAllNames) {
  GeneratorOptions opt;
  opt.num_series = 2;
  EXPECT_EQ(MakeByName("gun", opt).name(), "GunLike");
  EXPECT_EQ(MakeByName("Trace", opt).name(), "TraceLike");
  EXPECT_EQ(MakeByName("50words", opt).name(), "WordsLike");
  EXPECT_EQ(MakeByName("unknown", opt).name(), "GunLike");
}

TEST(MakePaperDatasetsTest, ThreeSetsWithPaperCardinalities) {
  const auto sets = MakePaperDatasets();
  ASSERT_EQ(sets.size(), 3u);
  EXPECT_EQ(sets[0].size(), 50u);
  EXPECT_EQ(sets[1].size(), 100u);
  EXPECT_EQ(sets[2].size(), 450u);
}

}  // namespace
}  // namespace data
}  // namespace sdtw
