#include "signal/gaussian.h"

#include <cmath>
#include <gtest/gtest.h>

#include "ts/stats.h"

namespace sdtw {
namespace signal {
namespace {

TEST(GaussianKernelTest, NormalisedToUnitSum) {
  const GaussianKernel k = MakeGaussianKernel(2.0);
  double sum = 0.0;
  for (double v : k.taps) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(GaussianKernelTest, SymmetricTaps) {
  const GaussianKernel k = MakeGaussianKernel(1.5);
  const std::size_t n = k.taps.size();
  for (std::size_t i = 0; i < n / 2; ++i) {
    EXPECT_NEAR(k.taps[i], k.taps[n - 1 - i], 1e-12);
  }
}

TEST(GaussianKernelTest, PeakAtCentre) {
  const GaussianKernel k = MakeGaussianKernel(1.0);
  const std::size_t c = k.radius();
  for (std::size_t i = 0; i < k.taps.size(); ++i) {
    EXPECT_LE(k.taps[i], k.taps[c] + 1e-15);
  }
}

TEST(GaussianKernelTest, ThreeSigmaSupport) {
  const GaussianKernel k = MakeGaussianKernel(2.0);
  EXPECT_EQ(k.radius(), 6u);
}

TEST(GaussianKernelTest, NonPositiveSigmaIsIdentity) {
  const GaussianKernel k = MakeGaussianKernel(0.0);
  ASSERT_EQ(k.taps.size(), 1u);
  EXPECT_DOUBLE_EQ(k.taps[0], 1.0);
}

TEST(ConvolveTest, IdentityKernelPreservesSignal) {
  const std::vector<double> x{1.0, -2.0, 3.0};
  const auto y = Convolve(x, MakeGaussianKernel(0.0));
  ASSERT_EQ(y.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
}

TEST(ConvolveTest, ConstantSignalInvariant) {
  const std::vector<double> x(20, 4.0);
  const auto y = Convolve(x, MakeGaussianKernel(2.5));
  for (double v : y) EXPECT_NEAR(v, 4.0, 1e-12);
}

TEST(ConvolveTest, SmoothingReducesVariance) {
  std::vector<double> x(64);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = (i % 2 == 0) ? 1.0 : -1.0;
  const auto y = Convolve(x, MakeGaussianKernel(2.0));
  EXPECT_LT(ts::StdDev(std::span<const double>(y)),
            ts::StdDev(std::span<const double>(x)));
}

TEST(ConvolveTest, EmptyInputYieldsEmpty) {
  EXPECT_TRUE(Convolve({}, MakeGaussianKernel(1.0)).empty());
}

TEST(ConvolveTest, SingleSampleSurvivesWideKernel) {
  const auto y = Convolve({5.0}, MakeGaussianKernel(10.0));
  ASSERT_EQ(y.size(), 1u);
  EXPECT_NEAR(y[0], 5.0, 1e-9);
}

TEST(ConvolveTest, ReflectiveBoundaryPreservesEdgeLevel) {
  // A step-free signal should not develop edge artefacts.
  std::vector<double> x(32);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 2.0;
  x[31] = 2.0;
  const auto y = Convolve(x, MakeGaussianKernel(3.0));
  EXPECT_NEAR(y.front(), 2.0, 1e-9);
  EXPECT_NEAR(y.back(), 2.0, 1e-9);
}

TEST(GaussianSmoothTest, PreservesMetadata) {
  ts::TimeSeries s({1.0, 2.0, 3.0}, 5);
  s.set_name("abc");
  const ts::TimeSeries out = GaussianSmooth(s, 1.0);
  EXPECT_EQ(out.label(), 5);
  EXPECT_EQ(out.name(), "abc");
  EXPECT_EQ(out.size(), 3u);
}

TEST(GradientTest, LinearSignalHasConstantGradient) {
  std::vector<double> x(10);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 3.0 * static_cast<double>(i);
  }
  const auto g = Gradient(x);
  for (double v : g) EXPECT_NEAR(v, 3.0, 1e-12);
}

TEST(GradientTest, ConstantSignalHasZeroGradient) {
  const auto g = Gradient(std::vector<double>(8, 1.0));
  for (double v : g) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(GradientTest, ShortInputs) {
  EXPECT_TRUE(Gradient({}).empty());
  const auto g1 = Gradient({4.0});
  ASSERT_EQ(g1.size(), 1u);
  EXPECT_DOUBLE_EQ(g1[0], 0.0);
}

TEST(Downsample2Test, TakesEverySecondSample) {
  const auto y = Downsample2({0.0, 1.0, 2.0, 3.0, 4.0});
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
  EXPECT_DOUBLE_EQ(y[2], 4.0);
}

TEST(Downsample2Test, EmptyAndSingle) {
  EXPECT_TRUE(Downsample2({}).empty());
  EXPECT_EQ(Downsample2({1.0}).size(), 1u);
}

}  // namespace
}  // namespace signal
}  // namespace sdtw
