#include "signal/scale_space.h"

#include <cmath>
#include <gtest/gtest.h>

#include "data/generators.h"
#include "ts/random.h"

namespace sdtw {
namespace signal {
namespace {

ts::TimeSeries MakeBumpySeries(std::size_t n) {
  ts::Rng rng(11);
  return data::patterns::RandomSmooth(n, 8, rng);
}

TEST(AutoOctavesTest, PaperFormulaWithThreeTierFloor) {
  // o = floor(log2(N)) - 6, floored at 3 so that the fine/medium/rough
  // tiers of Table 2 all exist (see AutoOctaves doc comment).
  EXPECT_EQ(AutoOctaves(150), 3u);   // formula gives 1 -> floored to 3
  EXPECT_EQ(AutoOctaves(275), 3u);   // formula gives 2 -> floored to 3
  EXPECT_EQ(AutoOctaves(1024), 4u);  // formula takes over past 2^9
  EXPECT_EQ(AutoOctaves(4096), 6u);
  EXPECT_EQ(AutoOctaves(1), 1u);     // degenerate input
}

TEST(ScaleSpaceTest, KappaSatisfiesDoublingIdentity) {
  ScaleSpaceOptions opt;
  opt.levels_per_octave = 2;
  ScaleSpace space(MakeBumpySeries(256), opt);
  // κ^s == 2 (paper §3.1.2).
  EXPECT_NEAR(std::pow(space.kappa(), 2.0), 2.0, 1e-12);
}

TEST(ScaleSpaceTest, OctaveCountMatchesOptions) {
  ScaleSpaceOptions opt;
  opt.num_octaves = 3;
  ScaleSpace space(MakeBumpySeries(512), opt);
  EXPECT_EQ(space.octaves().size(), 3u);
}

TEST(ScaleSpaceTest, AutoOctavesUsed) {
  ScaleSpaceOptions opt;  // num_octaves = 0 -> auto
  ScaleSpace space(MakeBumpySeries(275), opt);
  EXPECT_EQ(space.octaves().size(), AutoOctaves(275));
}

TEST(ScaleSpaceTest, LevelsPerOctave) {
  ScaleSpaceOptions opt;
  opt.num_octaves = 2;
  opt.levels_per_octave = 3;
  ScaleSpace space(MakeBumpySeries(256), opt);
  for (const Octave& o : space.octaves()) {
    EXPECT_EQ(o.gaussians.size(), 6u);  // s + 3
    EXPECT_EQ(o.dogs.size(), 5u);       // s + 2
  }
}

TEST(ScaleSpaceTest, OctaveLengthsHalve) {
  ScaleSpaceOptions opt;
  opt.num_octaves = 3;
  ScaleSpace space(MakeBumpySeries(256), opt);
  ASSERT_GE(space.octaves().size(), 2u);
  const std::size_t l0 = space.octaves()[0].length();
  const std::size_t l1 = space.octaves()[1].length();
  EXPECT_NEAR(static_cast<double>(l0) / static_cast<double>(l1), 2.0, 0.1);
}

TEST(ScaleSpaceTest, DogIsDifferenceOfAdjacentGaussians) {
  ScaleSpaceOptions opt;
  opt.num_octaves = 1;
  ScaleSpace space(MakeBumpySeries(128), opt);
  const Octave& o = space.octaves()[0];
  for (std::size_t l = 0; l < o.dogs.size(); ++l) {
    for (std::size_t i = 0; i < o.dogs[l].size(); i += 13) {
      EXPECT_NEAR(o.dogs[l][i], o.gaussians[l + 1][i] - o.gaussians[l][i],
                  1e-12);
    }
  }
}

TEST(ScaleSpaceTest, SigmasIncreaseWithinOctave) {
  ScaleSpaceOptions opt;
  opt.num_octaves = 2;
  ScaleSpace space(MakeBumpySeries(256), opt);
  for (const Octave& o : space.octaves()) {
    for (std::size_t l = 1; l < o.sigmas.size(); ++l) {
      EXPECT_GT(o.sigmas[l], o.sigmas[l - 1]);
    }
  }
}

TEST(ScaleSpaceTest, AbsoluteSigmaDoublesAcrossOctaves) {
  ScaleSpaceOptions opt;
  opt.num_octaves = 2;
  ScaleSpace space(MakeBumpySeries(256), opt);
  EXPECT_NEAR(space.AbsoluteSigma(1, 0) / space.AbsoluteSigma(0, 0), 2.0,
              1e-12);
  EXPECT_NEAR(space.AbsoluteSigma(1, 1) / space.AbsoluteSigma(0, 1), 2.0,
              1e-12);
}

TEST(ScaleSpaceTest, ToOriginalPositionScalesByOctave) {
  ScaleSpaceOptions opt;
  opt.num_octaves = 2;
  ScaleSpace space(MakeBumpySeries(256), opt);
  EXPECT_DOUBLE_EQ(space.ToOriginalPosition(0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(space.ToOriginalPosition(1, 10.0), 20.0);
}

TEST(ScaleSpaceTest, ShortSeriesGetsOneOctave) {
  ScaleSpaceOptions opt;
  opt.num_octaves = 5;
  opt.min_length = 8;
  ScaleSpace space(ts::TimeSeries({1.0, 2.0, 3.0, 2.0, 1.0, 2.0, 3.0, 2.0,
                                   1.0, 2.0}),
                   opt);
  // 10 samples: octave 0 builds, downsampled 5 < min_length stops there.
  EXPECT_EQ(space.octaves().size(), 1u);
}

TEST(ScaleSpaceTest, DegenerateTinyInputStillProvidesOctave) {
  ScaleSpaceOptions opt;
  ScaleSpace space(ts::TimeSeries({1.0, 2.0}), opt);
  EXPECT_GE(space.octaves().size(), 1u);
}

TEST(ScaleSpaceTest, ConstantSeriesHasZeroDog) {
  ScaleSpaceOptions opt;
  opt.num_octaves = 1;
  ScaleSpace space(ts::TimeSeries::Constant(64, 3.0), opt);
  for (const auto& dog : space.octaves()[0].dogs) {
    for (double v : dog) EXPECT_NEAR(v, 0.0, 1e-9);
  }
}

}  // namespace
}  // namespace signal
}  // namespace sdtw
