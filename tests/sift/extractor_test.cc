#include "sift/extractor.h"

#include <cmath>
#include <gtest/gtest.h>

#include "data/generators.h"
#include "ts/random.h"
#include "ts/transforms.h"

namespace sdtw {
namespace sift {
namespace {

ts::TimeSeries BumpSeries(std::size_t n, double center, double width) {
  return data::patterns::Bump(n, center, width, 1.0);
}

ts::TimeSeries Bumpy(std::size_t n, std::uint64_t seed, std::size_t k = 10) {
  ts::Rng rng(seed);
  return data::patterns::RandomSmooth(n, k, rng);
}

TEST(KeypointTest, ScopeGeometry) {
  Keypoint kp;
  kp.position = 50.0;
  kp.sigma = 4.0;
  EXPECT_DOUBLE_EQ(kp.scope_radius(), 12.0);
  EXPECT_DOUBLE_EQ(kp.scope_start(), 38.0);
  EXPECT_DOUBLE_EQ(kp.scope_end(), 62.0);
  EXPECT_DOUBLE_EQ(kp.scope_length(), 24.0);
}

TEST(KeypointTest, ScopeStartClampedAtZero) {
  Keypoint kp;
  kp.position = 2.0;
  kp.sigma = 3.0;
  EXPECT_DOUBLE_EQ(kp.scope_start(), 0.0);
}

TEST(KeypointTest, ScaleClassification) {
  Keypoint kp;
  kp.octave = 0;
  EXPECT_EQ(ClassifyScale(kp), ScaleClass::kFine);
  kp.octave = 1;
  EXPECT_EQ(ClassifyScale(kp), ScaleClass::kMedium);
  kp.octave = 2;
  EXPECT_EQ(ClassifyScale(kp), ScaleClass::kRough);
  kp.octave = 5;
  EXPECT_EQ(ClassifyScale(kp), ScaleClass::kRough);
}

TEST(ExtractorTest, ConstantSeriesHasNoKeypoints) {
  SalientExtractor ex;
  const auto kps = ex.Extract(ts::TimeSeries::Constant(200, 1.0));
  EXPECT_TRUE(kps.empty());
}

TEST(ExtractorTest, SingleBumpDetected) {
  SalientExtractor ex;
  const auto kps = ex.Extract(BumpSeries(128, 64.0, 5.0));
  ASSERT_FALSE(kps.empty());
  // At least one keypoint near the bump centre.
  bool near = false;
  for (const Keypoint& kp : kps) {
    if (std::abs(kp.position - 64.0) < 10.0) near = true;
  }
  EXPECT_TRUE(near);
}

TEST(ExtractorTest, KeypointsSortedByPosition) {
  SalientExtractor ex;
  const auto kps = ex.Extract(Bumpy(256, 21));
  for (std::size_t i = 1; i < kps.size(); ++i) {
    EXPECT_LE(kps[i - 1].position, kps[i].position);
  }
}

TEST(ExtractorTest, PositionsWithinSeries) {
  SalientExtractor ex;
  const ts::TimeSeries s = Bumpy(150, 22);
  const auto kps = ex.Extract(s);
  for (const Keypoint& kp : kps) {
    EXPECT_GE(kp.position, 0.0);
    EXPECT_LE(kp.position, static_cast<double>(s.size() - 1));
  }
}

TEST(ExtractorTest, DescriptorLengthHonoured) {
  for (std::size_t len : {4u, 8u, 16u, 32u, 64u, 128u}) {
    ExtractorOptions opt;
    opt.descriptor_length = len;
    SalientExtractor ex(opt);
    const auto kps = ex.Extract(Bumpy(256, 23));
    ASSERT_FALSE(kps.empty()) << len;
    for (const Keypoint& kp : kps) {
      EXPECT_EQ(kp.descriptor.size(), len);
    }
  }
}

TEST(ExtractorTest, OddDescriptorLengthRoundedUp) {
  ExtractorOptions opt;
  opt.descriptor_length = 7;
  SalientExtractor ex(opt);
  EXPECT_EQ(ex.options().descriptor_length, 8u);
}

TEST(ExtractorTest, NormalisedDescriptorsHaveUnitNorm) {
  SalientExtractor ex;
  const auto kps = ex.Extract(Bumpy(256, 24));
  ASSERT_FALSE(kps.empty());
  for (const Keypoint& kp : kps) {
    double norm = 0.0;
    for (double v : kp.descriptor) norm += v * v;
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      EXPECT_NEAR(norm, 1.0, 1e-6);
    }
  }
}

TEST(ExtractorTest, DescriptorClampBoundsComponents) {
  ExtractorOptions opt;
  opt.descriptor_clamp = 0.2;
  SalientExtractor ex(opt);
  const auto kps = ex.Extract(Bumpy(256, 25));
  for (const Keypoint& kp : kps) {
    for (double v : kp.descriptor) {
      EXPECT_LE(v, 0.45);  // clamped then renormalised; stays bounded.
      EXPECT_GE(v, 0.0);
    }
  }
}

TEST(ExtractorTest, AmplitudeInvarianceViaNormalisation) {
  // Descriptors of s and 3*s should match when normalisation is on.
  ExtractorOptions opt;
  SalientExtractor ex(opt);
  const ts::TimeSeries s = Bumpy(200, 26);
  const ts::TimeSeries s3 = ts::Scale(s, 3.0);
  const auto k1 = ex.Extract(s);
  const auto k2 = ex.Extract(s3);
  ASSERT_FALSE(k1.empty());
  ASSERT_EQ(k1.size(), k2.size());
  for (std::size_t i = 0; i < k1.size(); ++i) {
    ASSERT_EQ(k1[i].descriptor.size(), k2[i].descriptor.size());
    for (std::size_t d = 0; d < k1[i].descriptor.size(); ++d) {
      EXPECT_NEAR(k1[i].descriptor[d], k2[i].descriptor[d], 1e-6);
    }
  }
}

TEST(ExtractorTest, ShiftRobustness) {
  // A temporal shift moves keypoints by (roughly) the shift amount.
  const std::size_t n = 256;
  ts::TimeSeries a = BumpSeries(n, 80.0, 6.0);
  ts::TimeSeries b = BumpSeries(n, 120.0, 6.0);
  SalientExtractor ex;
  const auto ka = ex.Extract(a);
  const auto kb = ex.Extract(b);
  ASSERT_FALSE(ka.empty());
  ASSERT_FALSE(kb.empty());
  // Strongest keypoint of each should sit near its bump.
  auto strongest = [](const std::vector<Keypoint>& kps) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < kps.size(); ++i) {
      if (std::abs(kps[i].response) > std::abs(kps[best].response)) best = i;
    }
    return kps[best];
  };
  EXPECT_NEAR(strongest(ka).position, 80.0, 12.0);
  EXPECT_NEAR(strongest(kb).position, 120.0, 12.0);
}

TEST(ExtractorTest, WiderBumpFoundAtLargerScale) {
  // A width-30 bump has its characteristic scale around sigma ~ 30, which
  // lives in octave 4 of the pyramid; give the extractor enough octaves.
  ExtractorOptions opt;
  opt.scale_space.num_octaves = 5;
  SalientExtractor ex3(opt);
  const auto narrow = ex3.Extract(BumpSeries(512, 256.0, 3.0));
  const auto wide = ex3.Extract(BumpSeries(512, 256.0, 30.0));
  ASSERT_FALSE(narrow.empty());
  ASSERT_FALSE(wide.empty());
  auto max_sigma = [](const std::vector<Keypoint>& kps) {
    double s = 0.0;
    for (const Keypoint& kp : kps) {
      s = std::max(s, kp.sigma);
    }
    return s;
  };
  EXPECT_GT(max_sigma(wide), max_sigma(narrow));
}

TEST(ExtractorTest, EpsilonRelaxationAdmitsMoreKeypoints) {
  const ts::TimeSeries s = Bumpy(300, 27, 16);
  ExtractorOptions strict;
  strict.epsilon = 0.0;
  ExtractorOptions relaxed;
  relaxed.epsilon = 0.2;
  const auto k_strict = SalientExtractor(strict).Extract(s);
  const auto k_relaxed = SalientExtractor(relaxed).Extract(s);
  EXPECT_GE(k_relaxed.size(), k_strict.size());
}

TEST(ExtractorTest, MinContrastFiltersWeakKeypoints) {
  const ts::TimeSeries s = Bumpy(300, 28, 16);
  ExtractorOptions low;
  low.min_contrast = 0.0;
  ExtractorOptions high;
  high.min_contrast = 0.05;
  const auto k_low = SalientExtractor(low).Extract(s);
  const auto k_high = SalientExtractor(high).Extract(s);
  EXPECT_LE(k_high.size(), k_low.size());
}

TEST(ExtractorTest, DipsDetectedWhenMinimaEnabled) {
  // A pure dip (negative bump).
  const ts::TimeSeries dip = data::patterns::Bump(128, 64.0, 5.0, -1.0);
  ExtractorOptions with;
  with.detect_minima = true;
  ExtractorOptions without;
  without.detect_minima = false;
  const auto k_with = SalientExtractor(with).Extract(dip);
  const auto k_without = SalientExtractor(without).Extract(dip);
  // Disabling minima must not find more keypoints than enabling them.
  EXPECT_GE(k_with.size(), k_without.size());
  ASSERT_FALSE(k_with.empty());
}

TEST(ExtractorTest, ScopeRadiusIsThreeSigma) {
  SalientExtractor ex;
  const auto kps = ex.Extract(Bumpy(200, 29));
  for (const Keypoint& kp : kps) {
    EXPECT_DOUBLE_EQ(kp.scope_radius(), 3.0 * kp.sigma);
  }
}

TEST(CountByScaleTest, BucketsByOctave) {
  std::vector<Keypoint> kps(5);
  kps[0].octave = 0;
  kps[1].octave = 0;
  kps[2].octave = 1;
  kps[3].octave = 2;
  kps[4].octave = 4;
  const ScaleHistogram h = CountByScale(kps);
  EXPECT_DOUBLE_EQ(h.fine, 2);
  EXPECT_DOUBLE_EQ(h.medium, 1);
  EXPECT_DOUBLE_EQ(h.rough, 2);
  EXPECT_DOUBLE_EQ(h.total(), 5);
}

}  // namespace
}  // namespace sift
}  // namespace sdtw
